package obs

import (
	"sync"
	"sync/atomic"

	"mascbgmp/internal/wire"
)

// Observer is the handle protocol components emit events through. Every
// event increments the matching counter in the observer's Metrics registry
// (scoped by the event's Domain/Router) and fans out to subscribers.
//
// A nil *Observer is a valid no-op sink: Emit returns immediately and
// Metrics() returns a nil (no-op) registry, so instrumented hot paths cost
// one branch when observability is off.
type Observer struct {
	metrics *Metrics

	// tracer and flight are optional attachments, loaded lock-free on the
	// emit path; unattached (nil) they cost one atomic load.
	tracer atomic.Pointer[Tracer]
	flight atomic.Pointer[FlightRecorder]

	mu      sync.Mutex
	subs    map[int]func(Event) // guarded by mu
	nextSub int                 // guarded by mu
	// nsubs mirrors len(subs) so Emit can skip the fan-out lock when
	// nobody is listening.
	nsubs atomic.Int32
}

// NewObserver returns an Observer with a fresh Metrics registry.
func NewObserver() *Observer {
	return &Observer{metrics: NewMetrics(), subs: map[int]func(Event){}}
}

// Metrics returns the observer's counter registry (nil for a nil
// observer; the nil registry ignores everything).
func (o *Observer) Metrics() *Metrics {
	if o == nil {
		return nil
	}
	return o.metrics
}

// Emit records one event: the counter named by the event's Kind, scoped by
// its Domain and Router, grows by Event.N(), and every subscriber runs
// with the event. Safe on nil and for concurrent use.
//
// Subscribers run synchronously on the emitting goroutine. Instrumented
// components emit only outside their internal locks, so subscribers may
// inspect component state; they must not block.
func (o *Observer) Emit(e Event) {
	if o == nil || e.Kind == KindInvalid || e.Kind >= kindCount {
		return
	}
	o.metrics.Counter(e.Kind.String(), e.Domain, e.Router).Add(e.N())
	o.flight.Load().Record(e)
	if o.nsubs.Load() == 0 {
		return
	}
	o.mu.Lock()
	fns := make([]func(Event), 0, len(o.subs))
	for _, fn := range o.subs {
		fns = append(fns, fn)
	}
	o.mu.Unlock()
	for _, fn := range fns {
		fn(e)
	}
}

// Subscribe registers fn to run on every subsequent event and returns a
// cancel function. Safe on nil (the cancel is a no-op).
func (o *Observer) Subscribe(fn func(Event)) (cancel func()) {
	if o == nil {
		return func() {}
	}
	o.mu.Lock()
	id := o.nextSub
	o.nextSub++
	o.subs[id] = fn
	o.nsubs.Store(int32(len(o.subs)))
	o.mu.Unlock()
	return func() {
		o.mu.Lock()
		delete(o.subs, id)
		o.nsubs.Store(int32(len(o.subs)))
		o.mu.Unlock()
	}
}

// Snapshot is shorthand for Metrics().Snapshot().
func (o *Observer) Snapshot() Snapshot { return o.Metrics().Snapshot() }

// SetTracer attaches t; subsequent Tracer() calls return it. Safe on nil.
func (o *Observer) SetTracer(t *Tracer) {
	if o != nil {
		o.tracer.Store(t)
	}
}

// Tracer returns the attached tracer, nil when none (a nil tracer is a
// valid no-op, so callers use the result unconditionally).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer.Load()
}

// SetFlightRecorder attaches f; every subsequent Emit also records into
// it. Safe on nil.
func (o *Observer) SetFlightRecorder(f *FlightRecorder) {
	if o != nil {
		o.flight.Store(f)
	}
}

// FlightRecorder returns the attached recorder, nil when none.
func (o *Observer) FlightRecorder() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.flight.Load()
}

// Histogram is shorthand for Metrics().Histogram — the handle protocol
// components observe latencies through. Safe on nil (returns a nil,
// no-op histogram).
func (o *Observer) Histogram(name string, domain wire.DomainID, router wire.RouterID) *Histogram {
	return o.Metrics().Histogram(name, domain, router)
}
