package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"mascbgmp/internal/wire"
)

// fakeClock is a hand-advanced time source for tracer tests.
type fakeClock struct {
	mu sync.Mutex
	ns int64
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Unix(0, c.ns)
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.ns += int64(d)
	c.mu.Unlock()
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.SetNow(func() time.Time { return time.Unix(0, 0) })
	if got := tr.Now(); got != 0 {
		t.Fatalf("nil.Now() = %d", got)
	}
	sp := tr.Begin(SpanRepair, Event{})
	if !sp.Context().Zero() {
		t.Fatalf("nil tracer Begin context = %+v, want zero", sp.Context())
	}
	sp.End()
	child := tr.BeginChild(sp.Context(), SpanJoinHop, Event{})
	child.End()
	if recs := tr.Records(); recs != nil {
		t.Fatalf("nil.Records() = %v", recs)
	}
}

func TestBeginChildOnZeroContextStopsPropagation(t *testing.T) {
	tr := NewTracer(1)
	sp := tr.BeginChild(wire.TraceContext{}, SpanJoinHop, Event{})
	if !sp.Context().Zero() {
		t.Fatalf("child of zero context got context %+v", sp.Context())
	}
	sp.End()
	if n := len(tr.Records()); n != 0 {
		t.Fatalf("zero-context child recorded %d spans", n)
	}
}

func TestTracerBuildsParentChildChain(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(1998)
	tr.SetNow(clk.Now)

	// Start off zero: a zero instant reads as "no clock", so root-start
	// propagation is only visible from a nonzero origin.
	clk.Advance(time.Second)
	root := tr.Begin(SpanMemberJoin, Event{Domain: 2, Router: 21})
	clk.Advance(5 * time.Millisecond)
	hop := tr.BeginChild(root.Context(), SpanJoinHop, Event{Domain: 1, Router: 13})
	clk.Advance(3 * time.Millisecond)
	hop.End()
	hop2 := tr.BeginChild(hop.Context(), SpanJoinHop, Event{Domain: 1, Router: 12})
	hop2.End()
	clk.Advance(time.Millisecond)
	root.End()

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d spans, want 3", len(recs))
	}
	for _, r := range recs[1:] {
		if r.Trace != recs[0].Trace {
			t.Fatalf("spans landed in different traces: %+v vs %+v", recs[0], r)
		}
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name+string(rune('0'+r.Router%10))] = r
	}
	rootRec, hopRec, hop2Rec := byName["member.join1"], byName["bgmp.join.hop3"], byName["bgmp.join.hop2"]
	if rootRec.Parent != 0 {
		t.Fatalf("root has parent %d", rootRec.Parent)
	}
	if hopRec.Parent != rootRec.ID {
		t.Fatalf("hop parent = %d, want root %d", hopRec.Parent, rootRec.ID)
	}
	if hop2Rec.Parent != hopRec.ID {
		t.Fatalf("hop2 parent = %d, want hop %d", hop2Rec.Parent, hopRec.ID)
	}
	// Root start instant propagates through the chain's contexts.
	if hop.Context().Start != root.Context().Start {
		t.Fatalf("chain root start %d != %d", hop.Context().Start, root.Context().Start)
	}
	if rootRec.End-rootRec.Start != uint64(9*time.Millisecond) {
		t.Fatalf("root duration = %dns, want 9ms", rootRec.End-rootRec.Start)
	}
	if hopRec.End-hopRec.Start != uint64(3*time.Millisecond) {
		t.Fatalf("hop duration = %dns, want 3ms", hopRec.End-hopRec.Start)
	}
}

func TestTracerIDStreamIsDeterministic(t *testing.T) {
	emit := func() []SpanRecord {
		clk := &fakeClock{}
		tr := NewTracer(42)
		tr.SetNow(clk.Now)
		a := tr.Begin(SpanSessionDown, Event{Domain: 1, Router: 11})
		clk.Advance(time.Second)
		b := tr.BeginChild(a.Context(), SpanRepair, Event{Domain: 1, Router: 12})
		b.End()
		a.End()
		return tr.Records()
	}
	r1, r2 := emit(), emit()
	if len(r1) != len(r2) {
		t.Fatalf("lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("span %d differs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
	if !bytes.Equal(ChromeTrace(r1), ChromeTrace(r2)) {
		t.Fatal("ChromeTrace output differs between identical runs")
	}
}

func TestRenderTreeNestsChildren(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(7)
	tr.SetNow(clk.Now)
	root := tr.Begin(SpanSessionDown, Event{Domain: 1, Router: 11, Peer: 21})
	clk.Advance(250 * time.Millisecond)
	child := tr.BeginChild(root.Context(), SpanPeerDown, Event{Domain: 1, Router: 11})
	child.End()
	root.End()

	got := RenderTree(tr.Records())
	want := "session.down domain=1 router=11 peer=21 +0ms\n" +
		"  bgmp.peer_down domain=1 router=11 +250ms\n"
	if got != want {
		t.Fatalf("RenderTree:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestChromeTraceShape(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(3)
	tr.SetNow(clk.Now)
	clk.Advance(time.Hour) // nonzero base exercises the rebase
	sp := tr.Begin(SpanClaim, Event{Domain: 4})
	clk.Advance(1500 * time.Microsecond)
	sp.End()

	out := string(ChromeTrace(tr.Records()))
	for _, want := range []string{
		`"name":"masc.claim.round"`, `"ph":"X"`, `"pid":4`,
		`"ts":0.000`, `"dur":1500.000`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ChromeTrace missing %s:\n%s", want, out)
		}
	}
}

func TestConcurrentSpanEmissionIsRaceFree(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(11)
	tr.SetNow(clk.Now)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tr.Begin(SpanJoinHop, Event{Domain: wire.DomainID(w + 1)})
				child := tr.BeginChild(sp.Context(), SpanJoinHop, Event{Domain: wire.DomainID(w + 1)})
				child.End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	recs := tr.Records()
	if len(recs) != workers*per*2 {
		t.Fatalf("got %d spans, want %d", len(recs), workers*per*2)
	}
	seen := map[uint64]bool{}
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("duplicate span ID %x", r.ID)
		}
		seen[r.ID] = true
	}
}
