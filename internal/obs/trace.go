package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/wire"
)

// Span names. Every Begin/BeginChild site must spell its name through one
// of these package-level constants (enforced by masclint's obsdiscipline
// analyzer), so trace consumers and emitters can never fork on a typo.
const (
	SpanMemberJoin     = "member.join"      // a domain-local member joined a group
	SpanMemberLeave    = "member.leave"     // the last domain-local member left
	SpanJoinHop        = "bgmp.join.hop"    // a join/source-join processed at one hop
	SpanPruneHop       = "bgmp.prune.hop"   // a prune/source-prune processed at one hop
	SpanRepair         = "bgmp.repair"      // RouteChanged re-attached trees
	SpanPeerDown       = "bgmp.peer_down"   // PeerDown failover processing
	SpanBGPUpdate      = "bgp.update"       // an inbound update's reselection
	SpanBGPWithdraw    = "bgp.withdraw"     // RemoveNeighbor's withdrawal reselection
	SpanSessionDown    = "session.down"     // session supervision tore a peering down
	SpanLivenessDetect = "liveness.detect"  // the fast detector declared a peer dead
	SpanClaim          = "masc.claim.round" // a MASC claim from announce to win/loss
)

// Histogram names. Values are nanoseconds unless the name says otherwise.
const (
	HistJoinGraft     = "join_graft_ns"     // member join → branch grafted
	HistClaimConverge = "claim_converge_ns" // claim announced → claim won
	HistDetect        = "detect_ns"         // fault injected → session declared down
	HistReroute       = "reroute_ns"        // fault injected → delivery restored
	HistReconverge    = "reconverge_ns"     // restart → direct path reconverged
	HistForwardWork   = "forward_fanout"    // per-packet forwarding fan-out (copies)
)

// SpanRecord is one completed (or still-open, End==Start) span.
type SpanRecord struct {
	Trace  uint64 // causal chain ID
	ID     uint64 // this span's ID
	Parent uint64 // parent span ID; zero for roots
	Name   string
	Domain wire.DomainID
	Router wire.RouterID
	Peer   wire.RouterID
	Group  addr.Addr
	Start  uint64 // ns on the tracer's clock
	End    uint64
}

// Tracer allocates span and trace IDs from a deterministic seed stream
// (splitmix64) and records spans for export. A nil *Tracer is a valid
// no-op: Begin/BeginChild return zero Spans whose contexts are zero, so
// nothing downstream is stamped and all frames stay version 1.
//
// Time comes from the clock the owner attaches with SetNow (core wires the
// network's simulation clock; experiments wire theirs). With no clock all
// timestamps are zero — span structure is still recorded.
type Tracer struct {
	mu   sync.Mutex
	id   uint64           // splitmix64 state; guarded by mu
	now  func() time.Time // guarded by mu
	recs []SpanRecord     // guarded by mu
}

// NewTracer returns a Tracer whose ID stream derives from seed.
func NewTracer(seed int64) *Tracer {
	return &Tracer{id: uint64(seed)}
}

// SetNow attaches the time source (conventionally a simclock's Now method).
// Safe on nil.
func (t *Tracer) SetNow(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

// Now returns the tracer's current time in nanoseconds, zero when no clock
// is attached (or on a nil tracer). Instrumentation uses it to compute
// origin-to-here latencies against TraceContext.Start.
func (t *Tracer) Now() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	now := t.now
	t.mu.Unlock()
	if now == nil {
		return 0
	}
	return uint64(now().UnixNano())
}

// nextIDLocked advances the splitmix64 stream, skipping zero (a zero trace
// or span ID would read as "untraced").
func (t *Tracer) nextIDLocked() uint64 {
	for {
		t.id += 0x9e3779b97f4a7c15
		z := t.id
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

// Span is a handle on one recorded span. The zero Span (from a nil tracer
// or a zero parent context) is a no-op: End does nothing and Context
// returns the zero context.
type Span struct {
	t   *Tracer
	idx int
	ctx wire.TraceContext
}

// Context returns the context downstream messages should carry: this
// span's (trace, span) plus the chain root's start instant.
func (s Span) Context() wire.TraceContext { return s.ctx }

// End closes the span at the tracer's current time.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if s.t.now != nil {
		s.t.recs[s.idx].End = uint64(s.t.now().UnixNano())
	}
	s.t.mu.Unlock()
}

// Begin starts a new trace rooted at a protocol-initiating event. The
// event supplies the span's scope labels (Domain/Router/Peer/Group). Safe
// on nil (returns a no-op Span).
func (t *Tracer) Begin(name string, e Event) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	trace := t.nextIDLocked()
	return t.beginLocked(trace, 0, 0, name, e)
}

// BeginChild starts a span under ctx's span in ctx's trace. A zero ctx
// (untraced message) or nil tracer yields a no-op Span, so propagation
// stops exactly where tracing stopped.
func (t *Tracer) BeginChild(ctx wire.TraceContext, name string, e Event) Span {
	if t == nil || ctx.Zero() {
		return Span{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.beginLocked(ctx.Trace, ctx.Span, ctx.Start, name, e)
}

func (t *Tracer) beginLocked(trace, parent, rootStart uint64, name string, e Event) Span {
	id := t.nextIDLocked()
	var now uint64
	if t.now != nil {
		now = uint64(t.now().UnixNano())
	}
	if rootStart == 0 {
		rootStart = now
	}
	t.recs = append(t.recs, SpanRecord{
		Trace: trace, ID: id, Parent: parent, Name: name,
		Domain: e.Domain, Router: e.Router, Peer: e.Peer, Group: e.Group,
		Start: now, End: now,
	})
	return Span{t: t, idx: len(t.recs) - 1,
		ctx: wire.TraceContext{Trace: trace, Span: id, Start: rootStart}}
}

// Records returns a copy of every recorded span, sorted by
// (Trace, Start, ID) — a total, deterministic order.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.recs...)
	t.mu.Unlock()
	SortSpans(out)
	return out
}

// SortSpans orders spans by (Trace, Start, ID).
func SortSpans(recs []SpanRecord) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.ID < b.ID
	})
}

// micros renders a nanosecond count as Chrome's microsecond ticks with
// fixed sub-microsecond precision, avoiding float formatting entirely.
func micros(ns uint64) string {
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// ChromeTrace renders spans as a Chrome trace-event JSON array (load via
// chrome://tracing or Perfetto): complete events (ph "X") with pid=domain
// and tid=router. The rendering is hand-marshalled and byte-deterministic
// for a given record list; pass records pre-sorted (Tracer.Records sorts).
// Timestamps are rebased to the earliest span start.
func ChromeTrace(recs []SpanRecord) []byte {
	var base uint64
	for i, r := range recs {
		if i == 0 || r.Start < base {
			base = r.Start
		}
	}
	var b strings.Builder
	b.WriteString("[\n")
	for i, r := range recs {
		if i > 0 {
			b.WriteString(",\n")
		}
		dur := uint64(0)
		if r.End > r.Start {
			dur = r.End - r.Start
		}
		fmt.Fprintf(&b,
			`{"name":%q,"cat":"mascbgmp","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,`+
				`"args":{"trace":"%016x","span":"%016x","parent":"%016x","peer":%d,"group":%d}}`,
			r.Name, micros(r.Start-base), micros(dur), r.Domain, r.Router,
			r.Trace, r.ID, r.Parent, r.Peer, r.Group)
	}
	b.WriteString("\n]\n")
	return []byte(b.String())
}

// RenderTree renders spans as an indented text forest — one tree per
// trace, children under parents — for golden tests and terminal
// inspection. Deterministic: traces order by (root start, trace ID),
// children by (start, ID). Offsets are milliseconds from the trace root.
func RenderTree(recs []SpanRecord) string {
	sorted := append([]SpanRecord(nil), recs...)
	SortSpans(sorted)
	children := map[uint64][]SpanRecord{} // parent span ID → spans
	var roots []SpanRecord
	inTrace := map[uint64]bool{}
	for _, r := range sorted {
		inTrace[r.ID] = true
	}
	for _, r := range sorted {
		if r.Parent != 0 && inTrace[r.Parent] {
			children[r.Parent] = append(children[r.Parent], r)
		} else {
			roots = append(roots, r)
		}
	}
	var b strings.Builder
	var walk func(r SpanRecord, depth int, rootStart uint64)
	walk = func(r SpanRecord, depth int, rootStart uint64) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(r.Name)
		if r.Domain != 0 {
			fmt.Fprintf(&b, " domain=%d", r.Domain)
		}
		if r.Router != 0 {
			fmt.Fprintf(&b, " router=%d", r.Router)
		}
		if r.Peer != 0 {
			fmt.Fprintf(&b, " peer=%d", r.Peer)
		}
		if r.Group != 0 {
			fmt.Fprintf(&b, " group=%d", r.Group)
		}
		fmt.Fprintf(&b, " +%dms", (r.Start-rootStart)/1e6)
		b.WriteString("\n")
		for _, c := range children[r.ID] {
			walk(c, depth+1, rootStart)
		}
	}
	for _, r := range roots {
		walk(r, 0, r.Start)
	}
	return b.String()
}
