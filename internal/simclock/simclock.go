// Package simclock provides the simulated time source and discrete-event
// scheduler used throughout the reproduction.
//
// The MASC protocol is driven by long wall-clock timers — a 48-hour
// collision-listening period and 30-day address lifetimes — so the protocol
// implementations take a Clock rather than calling time.Now directly. In
// production (cmd/bgmpd) they receive the real clock; in simulations and
// tests they receive a *Sim, which advances virtual time instantly and
// deterministically.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts the time source. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules fn to run once d has elapsed and returns a
	// handle that can cancel it.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Timer is a cancelable pending call, the analogue of *time.Timer for the
// Clock abstraction.
type Timer interface {
	// Stop cancels the pending call, reporting whether it was still
	// pending. Stopping an already-fired or stopped timer returns false.
	Stop() bool
}

// Real is the wall-clock Clock backed by package time.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{time.AfterFunc(d, fn)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

// Sim is a simulated Clock. Time stands still until Run, RunUntil, RunFor,
// or Step drains scheduled events; each event observes Now() equal to its
// scheduled instant. Sim's zero value is not usable; construct with NewSim.
type Sim struct {
	mu   sync.Mutex
	now  time.Time  // guarded by mu
	seq  uint64     // guarded by mu
	pend eventQueue // guarded by mu
}

// NewSim returns a simulated clock whose current time is start.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// AfterFunc implements Clock. The callback runs synchronously inside a
// subsequent Run/Step call, never concurrently with another callback.
func (s *Sim) AfterFunc(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := &event{mu: &s.mu, at: s.now.Add(d), seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.pend, ev)
	return ev
}

// At schedules fn at an absolute instant. Instants in the past run at the
// current time on the next Step.
func (s *Sim) At(t time.Time, fn func()) Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.Before(s.now) {
		t = s.now
	}
	ev := &event{mu: &s.mu, at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.pend, ev)
	return ev
}

// Pending returns the number of scheduled, uncanceled events.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ev := range s.pend {
		if !ev.stopped {
			n++
		}
	}
	return n
}

// Step advances to the next scheduled event and runs it, reporting whether
// an event ran. Canceled events are skipped without advancing time.
func (s *Sim) Step() bool {
	for {
		s.mu.Lock()
		if s.pend.Len() == 0 {
			s.mu.Unlock()
			return false
		}
		ev := heap.Pop(&s.pend).(*event)
		if ev.stopped {
			s.mu.Unlock()
			continue
		}
		s.now = ev.at
		ev.fired = true
		s.mu.Unlock()
		ev.fn()
		return true
	}
}

// RunUntil processes events scheduled at or before deadline, then sets the
// clock to deadline. It returns the number of events run.
func (s *Sim) RunUntil(deadline time.Time) int {
	n := 0
	for {
		s.mu.Lock()
		if s.pend.Len() == 0 || s.pend[0].at.After(deadline) {
			if s.now.Before(deadline) {
				s.now = deadline
			}
			s.mu.Unlock()
			return n
		}
		s.mu.Unlock()
		if s.Step() {
			n++
		}
	}
}

// RunFor advances the clock by d, processing everything due in between.
func (s *Sim) RunFor(d time.Duration) int {
	return s.RunUntil(s.Now().Add(d))
}

// Run drains every scheduled event, returning the number run. Callbacks may
// schedule further events; Run keeps going until the queue is empty, so a
// self-rearming timer makes Run diverge — use RunUntil for those workloads.
func (s *Sim) Run() int {
	n := 0
	for s.Step() {
		n++
	}
	return n
}

// event implements Timer and the heap entry. Its mutable fields are guarded
// by the owning Sim's mutex.
type event struct {
	mu      *sync.Mutex // the owning Sim's mutex
	at      time.Time
	seq     uint64 // FIFO tie-break for equal instants
	fn      func()
	idx     int
	stopped bool
	fired   bool
}

// Stop implements Timer.
func (e *event) Stop() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fired || e.stopped {
		return false
	}
	e.stopped = true
	return true
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx, q[j].idx = i, j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
