package simclock

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC)

func TestSimNowStandsStill(t *testing.T) {
	s := NewSim(t0)
	if !s.Now().Equal(t0) {
		t.Fatalf("Now = %v, want %v", s.Now(), t0)
	}
	s.AfterFunc(time.Hour, func() {})
	if !s.Now().Equal(t0) {
		t.Fatal("scheduling must not advance time")
	}
}

func TestSimAfterFuncOrdering(t *testing.T) {
	s := NewSim(t0)
	var got []int
	s.AfterFunc(2*time.Hour, func() { got = append(got, 2) })
	s.AfterFunc(1*time.Hour, func() { got = append(got, 1) })
	s.AfterFunc(3*time.Hour, func() { got = append(got, 3) })
	if n := s.Run(); n != 3 {
		t.Fatalf("Run = %d events, want 3", n)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if !s.Now().Equal(t0.Add(3 * time.Hour)) {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestSimFIFOAtSameInstant(t *testing.T) {
	s := NewSim(t0)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.AfterFunc(time.Hour, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of FIFO order: %v", got)
		}
	}
}

func TestSimEventSeesItsOwnTime(t *testing.T) {
	s := NewSim(t0)
	var seen time.Time
	s.AfterFunc(48*time.Hour, func() { seen = s.Now() })
	s.Run()
	if !seen.Equal(t0.Add(48 * time.Hour)) {
		t.Fatalf("event saw %v", seen)
	}
}

func TestSimStop(t *testing.T) {
	s := NewSim(t0)
	ran := false
	tm := s.AfterFunc(time.Hour, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report pending")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report not pending")
	}
	s.Run()
	if ran {
		t.Fatal("stopped event must not run")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d", s.Pending())
	}
}

func TestSimStopAfterFire(t *testing.T) {
	s := NewSim(t0)
	tm := s.AfterFunc(time.Hour, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim(t0)
	var got []int
	s.AfterFunc(1*time.Hour, func() { got = append(got, 1) })
	s.AfterFunc(5*time.Hour, func() { got = append(got, 5) })
	n := s.RunUntil(t0.Add(2 * time.Hour))
	if n != 1 || len(got) != 1 {
		t.Fatalf("RunUntil ran %d events (%v)", n, got)
	}
	if !s.Now().Equal(t0.Add(2 * time.Hour)) {
		t.Fatalf("Now = %v, want deadline", s.Now())
	}
	s.RunFor(3 * time.Hour)
	if len(got) != 2 || got[1] != 5 {
		t.Fatalf("got = %v", got)
	}
}

func TestSimRescheduleFromCallback(t *testing.T) {
	s := NewSim(t0)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.AfterFunc(time.Hour, tick)
		}
	}
	s.AfterFunc(time.Hour, tick)
	s.RunUntil(t0.Add(24 * time.Hour))
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if !s.Now().Equal(t0.Add(24 * time.Hour)) {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestSimNegativeAndPastSchedules(t *testing.T) {
	s := NewSim(t0)
	ran := 0
	s.AfterFunc(-time.Hour, func() { ran++ })
	s.At(t0.Add(-time.Hour), func() { ran++ })
	s.Run()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if !s.Now().Equal(t0) {
		t.Fatalf("past events must not move time backwards: %v", s.Now())
	}
}

func TestSimConcurrentScheduling(t *testing.T) {
	s := NewSim(t0)
	var wg sync.WaitGroup
	var mu sync.Mutex
	ran := 0
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.AfterFunc(time.Duration(i)*time.Minute, func() {
				mu.Lock()
				ran++
				mu.Unlock()
			})
		}(i)
	}
	wg.Wait()
	s.Run()
	if ran != 50 {
		t.Fatalf("ran = %d, want 50", ran)
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatal("real clock is far in the past")
	}
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("real AfterFunc never fired")
	}
	tm := c.AfterFunc(time.Hour, func() {})
	if !tm.Stop() {
		t.Fatal("Stop on pending real timer should be true")
	}
}
