// Quickstart: the smallest complete MASC/BGMP internetwork.
//
// Three domains — a backbone provider and two customers — run the whole
// stack in-process: MASC allocates multicast address ranges, BGP-lite
// distributes them as group routes, a MAAS leases a group address, BGMP
// builds the bidirectional shared tree, and a packet crosses it.
//
// A simulated clock compresses the 48-hour MASC waiting periods to
// nothing, so the example runs instantly and deterministically.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mascbgmp"
)

func main() {
	clk := mascbgmp.NewSimClock(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	net, err := mascbgmp.NewNetwork(mascbgmp.Config{
		Clock:       clk,
		Seed:        1,
		Synchronous: true, // deterministic in-process dispatch
	})
	if err != nil {
		panic(err)
	}

	// Backbone (domain 1) with two border routers; customers 2 and 3.
	for _, dc := range []mascbgmp.DomainConfig{
		{ID: 1, Routers: []mascbgmp.RouterID{11, 12}, Protocol: mascbgmp.NewDVMRP(),
			TopLevel: true, HostPrefix: mascbgmp.MustParsePrefix("10.1.0.0/16")},
		{ID: 2, Routers: []mascbgmp.RouterID{21}, Protocol: mascbgmp.NewDVMRP(),
			HostPrefix: mascbgmp.MustParsePrefix("10.2.0.0/16")},
		{ID: 3, Routers: []mascbgmp.RouterID{31}, Protocol: mascbgmp.NewDVMRP(),
			HostPrefix: mascbgmp.MustParsePrefix("10.3.0.0/16")},
	} {
		if _, err := net.AddDomain(dc); err != nil {
			log.Fatal(err)
		}
	}
	must(net.Link(21, 11)) // customer 2 ↔ backbone
	must(net.Link(31, 12)) // customer 3 ↔ backbone
	must(net.MASCPeerParentChild(1, 2))
	must(net.MASCPeerParentChild(1, 3))

	// 1. MASC: the backbone claims a /16 from 224/4; after the waiting
	// period the range is injected into BGP as a group route.
	net.Domain(1).MASC().RequestSpace(1<<16, 60*24*time.Hour)
	clk.RunFor(49 * time.Hour)
	fmt.Println("backbone holds:", net.Domain(1).MASC().Holdings()[0].Prefix)

	// 2. Customer 2 claims a sub-range of the backbone's space.
	net.Domain(2).MASC().RequestSpace(256, 30*24*time.Hour)
	clk.RunFor(49 * time.Hour)
	fmt.Println("customer 2 holds:", net.Domain(2).MASC().Holdings()[0].Prefix)

	// 3. A session in domain 2 leases a group address from its MAAS —
	// domain 2 becomes the group's root domain.
	lease, err := net.Domain(2).NewGroup(24 * time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("group address:", lease.Addr, "(rooted in domain 2)")

	// 4. A host in domain 3 joins; BGMP builds the shared tree toward the
	// root domain.
	net.Domain(3).Join(lease.Addr, 0)

	// 5. A host in domain 1 sends — senders need not be members.
	src := net.Domain(1).HostAddr(1)
	net.Domain(1).Send(lease.Addr, src, "hello, inter-domain multicast!", 0)

	for _, d := range net.Domain(3).Received() {
		fmt.Printf("domain 3 received %q from %v on group %v\n", d.Payload, d.Source, d.Group)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
