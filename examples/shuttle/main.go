// Shuttle broadcast: the paper's §5.1 motivating scenario.
//
// "The multicast session for a NASA space shuttle broadcast would have the
// shared tree rooted in NASA's domain. The root would be reasonably
// optimal for all receivers as they would receive packets from NASA along
// the shortest path from them to the sender."
//
// This example builds a seven-domain internetwork, creates the broadcast
// group in the NASA domain (so MASC/MAAS root the tree there), joins
// receivers in every other edge domain, streams packets from NASA, and
// then demonstrates the root-placement effect measured in Figure 4: it
// compares per-receiver path lengths with the tree rooted at the sender's
// domain versus a third-party root, using the analytical tree models on
// the same topology.
//
// Run with: go run ./examples/shuttle
package main

import (
	"fmt"
	"log"
	"time"

	"mascbgmp"
)

func main() {
	clk := mascbgmp.NewSimClock(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	net, err := mascbgmp.NewNetwork(mascbgmp.Config{Clock: clk, Seed: 11, Synchronous: true})
	if err != nil {
		panic(err)
	}

	// Topology: two backbones, NASA's domain under backbone 1, receiver
	// ISPs under both backbones.
	//
	//        backbone1 (1) ──── backbone2 (2)
	//        /    |                  |    \
	//   NASA(3) isp-east(4)    isp-west(5) isp-eu(6)
	//                                      |
	//                                 isp-asia(7)
	type dom struct {
		id   mascbgmp.DomainID
		name string
		rs   []mascbgmp.RouterID
		top  bool
	}
	doms := []dom{
		{1, "backbone1", []mascbgmp.RouterID{11, 12, 13}, true},
		{2, "backbone2", []mascbgmp.RouterID{21, 22, 23}, true},
		{3, "nasa", []mascbgmp.RouterID{31}, false},
		{4, "isp-east", []mascbgmp.RouterID{41}, false},
		{5, "isp-west", []mascbgmp.RouterID{51}, false},
		{6, "isp-eu", []mascbgmp.RouterID{61, 62}, false},
		{7, "isp-asia", []mascbgmp.RouterID{71}, false},
	}
	names := map[mascbgmp.DomainID]string{}
	for _, d := range doms {
		names[d.id] = d.name
		if _, err := net.AddDomain(mascbgmp.DomainConfig{
			ID: d.id, Routers: d.rs, Protocol: mascbgmp.NewDVMRP(), TopLevel: d.top,
			HostPrefix: mascbgmp.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", d.id)),
		}); err != nil {
			log.Fatal(err)
		}
	}
	for _, l := range [][2]mascbgmp.RouterID{
		{11, 21}, // backbone peering
		{12, 31}, // nasa
		{13, 41}, // isp-east
		{22, 51}, // isp-west
		{23, 61}, // isp-eu
		{62, 71}, // isp-asia behind isp-eu
	} {
		must(net.Link(l[0], l[1]))
	}
	must(net.MASCPeerSiblings(1, 2))
	for _, pc := range [][2]mascbgmp.DomainID{{1, 3}, {1, 4}, {2, 5}, {2, 6}, {6, 7}} {
		must(net.MASCPeerParentChild(pc[0], pc[1]))
	}

	// MASC: backbones claim from 224/4; NASA claims within backbone 1.
	net.Domain(1).MASC().RequestSpace(1<<16, 90*24*time.Hour)
	net.Domain(2).MASC().RequestSpace(1<<16, 90*24*time.Hour)
	clk.RunFor(49 * time.Hour)
	net.Domain(3).MASC().RequestSpace(256, 30*24*time.Hour)
	clk.RunFor(49 * time.Hour)
	fmt.Println("NASA's MASC range:", net.Domain(3).MASC().Holdings()[0].Prefix)

	// The broadcast group is created in NASA's domain: the session
	// directory leases the address there, rooting the tree at the sender.
	lease, err := net.Domain(3).NewGroup(12 * time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("shuttle broadcast group:", lease.Addr, "(root domain: nasa)")

	receivers := []mascbgmp.DomainID{4, 5, 6, 7}
	for _, id := range receivers {
		net.Domain(id).Join(lease.Addr, 0)
	}

	// Stream three frames from NASA.
	src := net.Domain(3).HostAddr(1)
	for i := 1; i <= 3; i++ {
		net.Domain(3).Send(lease.Addr, src, fmt.Sprintf("shuttle frame %d", i), 0)
	}
	for _, id := range receivers {
		got := net.Domain(id).Received()
		fmt.Printf("%-9s received %d frames (first: %q)\n", names[id], len(got), got[0].Payload)
	}

	// Root-placement comparison on the analytical models (Figure 4's
	// machinery): sender-rooted bidirectional trees are shortest-path
	// optimal; third-party roots pay a detour.
	fmt.Println("\nroot placement (path-length overhead vs shortest path, Fig 4 machinery):")
	cfg := mascbgmp.DefaultFig4Config()
	cfg.Domains = 600
	cfg.ExtraPeering = 80
	cfg.GroupSizes = []int{50}
	cfg.Trials = 10
	initiator := mascbgmp.RunFig4(cfg)[0]
	cfg.RandomRoot = true
	random := mascbgmp.RunFig4(cfg)[0]
	fmt.Printf("  initiator-rooted bidirectional tree: %.2fx average\n", initiator.BidirAvg)
	fmt.Printf("  random-rooted bidirectional tree:    %.2fx average\n", random.BidirAvg)
	fmt.Printf("  unidirectional (RP) tree:            %.2fx average\n", initiator.UniAvg)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
