// Policy routing: multicast policies through selective propagation of
// group routes (paper §3, §4.2).
//
// "We propose to realize multicast policies through selective propagation
// of the group routes in BGP so that use of the provider's networks can be
// suitably restricted (similar to the unicast case)."
//
// A transit provider (domain T) connects its customer (C) and two peers
// (P1, P2). T's export policy advertises only its own and its customer's
// group routes toward peers — so groups rooted in P1 are invisible through
// T at P2, and P2 cannot use T as transit to reach them: joins from P2
// simply have no route. Groups rooted in the customer C, however, are
// advertised to everyone, and both peers can join them through T.
//
// Run with: go run ./examples/policyrouting
package main

import (
	"fmt"
	"log"
	"time"

	"mascbgmp"
)

func main() {
	clk := mascbgmp.NewSimClock(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	net, err := mascbgmp.NewNetwork(mascbgmp.Config{Clock: clk, Seed: 5, Synchronous: true})
	if err != nil {
		panic(err)
	}

	const (
		transit  = mascbgmp.DomainID(1)
		customer = mascbgmp.DomainID(2)
		peer1    = mascbgmp.DomainID(3)
		peer2    = mascbgmp.DomainID(4)
	)
	// The transit provider's policy: group routes go to peers only when
	// originated by itself or its customer.
	policy := mascbgmp.TableExportFilter(mascbgmp.TableGRIB,
		mascbgmp.CustomerExportFilter(transit, map[mascbgmp.DomainID]bool{customer: true}))

	for _, dc := range []mascbgmp.DomainConfig{
		{ID: transit, Routers: []mascbgmp.RouterID{11, 12, 13}, Protocol: mascbgmp.NewDVMRP(),
			TopLevel: true, Export: policy, HostPrefix: mascbgmp.MustParsePrefix("10.1.0.0/16")},
		{ID: customer, Routers: []mascbgmp.RouterID{21}, Protocol: mascbgmp.NewDVMRP(),
			HostPrefix: mascbgmp.MustParsePrefix("10.2.0.0/16")},
		{ID: peer1, Routers: []mascbgmp.RouterID{31}, Protocol: mascbgmp.NewDVMRP(),
			TopLevel: true, HostPrefix: mascbgmp.MustParsePrefix("10.3.0.0/16")},
		{ID: peer2, Routers: []mascbgmp.RouterID{41}, Protocol: mascbgmp.NewDVMRP(),
			TopLevel: true, HostPrefix: mascbgmp.MustParsePrefix("10.4.0.0/16")},
	} {
		if _, err := net.AddDomain(dc); err != nil {
			log.Fatal(err)
		}
	}
	must(net.Link(11, 21)) // transit ↔ customer
	must(net.Link(12, 31)) // transit ↔ peer1
	must(net.Link(13, 41)) // transit ↔ peer2
	must(net.MASCPeerParentChild(transit, customer))
	must(net.MASCPeerSiblings(transit, peer1))
	must(net.MASCPeerSiblings(transit, peer2))
	must(net.MASCPeerSiblings(peer1, peer2))

	// Every domain acquires address space.
	net.Domain(transit).MASC().RequestSpace(1<<16, 90*24*time.Hour)
	net.Domain(peer1).MASC().RequestSpace(1<<12, 90*24*time.Hour)
	net.Domain(peer2).MASC().RequestSpace(1<<12, 90*24*time.Hour)
	clk.RunFor(49 * time.Hour)
	net.Domain(customer).MASC().RequestSpace(256, 30*24*time.Hour)
	clk.RunFor(49 * time.Hour)

	show := func(id mascbgmp.DomainID, name string) {
		r := net.Domain(id).Routers()[0]
		fmt.Printf("G-RIB at %s:\n", name)
		for _, e := range r.BGP().Table(mascbgmp.TableGRIB) {
			fmt.Printf("  %v origin=domain %d via router %d\n", e.Route.Prefix, e.Route.Origin, e.NextHop)
		}
	}
	show(peer2, "peer2 (sees transit + customer + its own routes — NOT peer1's)")

	// A group rooted in peer1: peer2 has no route through the transit
	// provider, so its join dies and no data arrives.
	leaseP1, err := net.Domain(peer1).NewGroup(6 * time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	net.Domain(peer2).Join(leaseP1.Addr, 0)
	net.Domain(peer1).Send(leaseP1.Addr, net.Domain(peer1).HostAddr(1), "peer1 broadcast", 0)
	fmt.Printf("\ngroup %v rooted in peer1: peer2 received %d packets (policy: no transit between peers)\n",
		leaseP1.Addr, len(net.Domain(peer2).Received()))

	// A group rooted in the customer: both peers can join through the
	// provider (customers pay for transit).
	leaseC, err := net.Domain(customer).NewGroup(6 * time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	net.Domain(peer1).Join(leaseC.Addr, 0)
	net.Domain(peer2).Join(leaseC.Addr, 0)
	net.Domain(customer).Send(leaseC.Addr, net.Domain(customer).HostAddr(1), "customer webcast", 0)
	fmt.Printf("group %v rooted in customer: peer1 received %d, peer2 received %d (customer routes are exported)\n",
		leaseC.Addr, len(net.Domain(peer1).Received()), len(net.Domain(peer2).Received()))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
