// Conference: multi-sender teleconference with source-specific branches —
// the paper's Figure 3(b) scenario.
//
// Domain F is multihomed: its shared-tree connection runs through F1 (via
// B), but its shortest path to sources in domain D runs through F2 (via
// A). F runs DVMRP inside, whose strict RPF check drops packets from D
// that enter at F1 — so F1 must unicast-encapsulate them to F2. With
// source-specific branches enabled, F2 then joins toward the source;
// after the first native packet arrives it source-prunes the shared-tree
// copies and the encapsulation stops (§5.3).
//
// The example prints the (S,G) state that appears at F2 and shows that
// steady-state delivery is exactly one copy per packet per domain, for
// both speakers of the conference.
//
// Run with: go run ./examples/conference
package main

import (
	"fmt"
	"log"
	"time"

	"mascbgmp"
)

func main() {
	clk := mascbgmp.NewSimClock(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	net, err := mascbgmp.NewNetwork(mascbgmp.Config{
		Clock:          clk,
		Seed:           42,
		Synchronous:    true,
		SourceBranches: true, // §5.3 on
	})
	if err != nil {
		panic(err)
	}

	// The paper's Fig 1/3 topology (domains A..H, F multihomed to B and A).
	type dom struct {
		id   mascbgmp.DomainID
		name string
		rs   []mascbgmp.RouterID
		top  bool
	}
	doms := []dom{
		{1, "A", []mascbgmp.RouterID{11, 12, 13, 14}, true},
		{2, "B", []mascbgmp.RouterID{21, 22}, false},
		{3, "C", []mascbgmp.RouterID{31, 32}, false},
		{4, "D", []mascbgmp.RouterID{41}, true},
		{5, "E", []mascbgmp.RouterID{51}, true},
		{6, "F", []mascbgmp.RouterID{61, 62}, false},
		{7, "G", []mascbgmp.RouterID{71, 72}, false},
		{8, "H", []mascbgmp.RouterID{81}, false},
	}
	names := map[mascbgmp.DomainID]string{}
	for _, d := range doms {
		names[d.id] = d.name
		if _, err := net.AddDomain(mascbgmp.DomainConfig{
			ID: d.id, Routers: d.rs, InteriorNodes: len(d.rs) + 2,
			Protocol: mascbgmp.NewDVMRP(), TopLevel: d.top,
			HostPrefix: mascbgmp.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", d.id)),
		}); err != nil {
			log.Fatal(err)
		}
	}
	for _, l := range [][2]mascbgmp.RouterID{
		{51, 11}, {31, 12}, {21, 13}, {41, 14}, // E-A, C-A, B-A, D-A
		{61, 22}, {71, 32}, {81, 72}, // F-B, G-C, H-G
		{62, 14}, // the Fig 3(b) link: F2-A4
	} {
		must(net.Link(l[0], l[1]))
	}
	for _, s := range [][2]mascbgmp.DomainID{{1, 4}, {1, 5}, {4, 5}} {
		must(net.MASCPeerSiblings(s[0], s[1]))
	}
	for _, pc := range [][2]mascbgmp.DomainID{{1, 2}, {1, 3}, {2, 6}, {3, 7}, {7, 8}} {
		must(net.MASCPeerParentChild(pc[0], pc[1]))
	}

	// Address allocation: A from 224/4, then B (the conference organizer's
	// domain) within A.
	net.Domain(1).MASC().RequestSpace(1<<16, 90*24*time.Hour)
	clk.RunFor(49 * time.Hour)
	net.Domain(2).MASC().RequestSpace(256, 30*24*time.Hour)
	clk.RunFor(49 * time.Hour)

	lease, err := net.Domain(2).NewGroup(6 * time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("conference group:", lease.Addr, "(organizer in B — root domain)")

	// Conference members: B, C, D, F, H.
	members := []mascbgmp.DomainID{2, 3, 4, 6, 8}
	for _, id := range members {
		net.Domain(id).Join(lease.Addr, 1)
	}

	// Speaker 1 in domain D talks. The first packet reaches F
	// encapsulated; F2 builds a source-specific branch toward D.
	speakerD := net.Domain(4).HostAddr(1)
	net.Domain(4).Send(lease.Addr, speakerD, "D: hello everyone", 1)

	f2 := net.Router(62)
	if parent, _, ok := f2.BGMP().SourceEntry(speakerD, lease.Addr); ok {
		fmt.Printf("F2 built (S,G) branch for speaker in D: parent target %v (toward the source via A)\n", parent)
	} else {
		fmt.Println("F2 has no (S,G) state — branches disabled?")
	}

	// Steady state: every member gets exactly one copy per utterance.
	clear := func() {
		for _, d := range doms {
			net.Domain(d.id).ClearReceived()
		}
	}
	clear()
	net.Domain(4).Send(lease.Addr, speakerD, "D: can you hear me?", 1)
	clear() // discard the switchover packet
	net.Domain(4).Send(lease.Addr, speakerD, "D: steady state now", 1)
	fmt.Print("speaker D heard in: ")
	for _, id := range members {
		if id == 4 {
			continue
		}
		fmt.Printf("%s(x%d) ", names[id], len(net.Domain(id).Received()))
	}
	fmt.Println()

	// Speaker 2 in domain H answers — data flows the other way along the
	// same bidirectional tree, no RP detour.
	clear()
	speakerH := net.Domain(8).HostAddr(1)
	net.Domain(8).Send(lease.Addr, speakerH, "H: loud and clear", 1)
	fmt.Print("speaker H heard in: ")
	for _, id := range members {
		if id == 8 {
			continue
		}
		fmt.Printf("%s(x%d) ", names[id], len(net.Domain(id).Received()))
	}
	fmt.Println()

	// A non-member in E interjects (IP model: senders need not join).
	// E's first packet triggers F's branch switchover for this new
	// source (one transition duplicate possible); steady state follows.
	net.Domain(5).Send(lease.Addr, net.Domain(5).HostAddr(1), "E: (mic check)", 1)
	clear()
	net.Domain(5).Send(lease.Addr, net.Domain(5).HostAddr(1), "E: lurker question", 1)
	fmt.Print("lurker E heard in:  ")
	for _, id := range members {
		fmt.Printf("%s(x%d) ", names[id], len(net.Domain(id).Received()))
	}
	fmt.Println()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
