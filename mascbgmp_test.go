package mascbgmp_test

import (
	"errors"
	"testing"
	"time"

	"mascbgmp"
)

// TestFacadeEndToEnd drives the whole system through the public API only:
// two domains, MASC allocation, a MAAS lease, a BGMP tree, one packet.
func TestFacadeEndToEnd(t *testing.T) {
	clk := mascbgmp.NewSimClock(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	net, err := mascbgmp.NewNetwork(mascbgmp.Config{
		Clock:       clk,
		Seed:        7,
		Synchronous: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range []mascbgmp.DomainConfig{
		{ID: 1, Routers: []mascbgmp.RouterID{11, 12}, Protocol: mascbgmp.NewDVMRP(),
			TopLevel: true, HostPrefix: mascbgmp.MustParsePrefix("10.1.0.0/16")},
		{ID: 2, Routers: []mascbgmp.RouterID{21}, Protocol: mascbgmp.NewPIMSM(1),
			HostPrefix: mascbgmp.MustParsePrefix("10.2.0.0/16")},
		{ID: 3, Routers: []mascbgmp.RouterID{31}, Protocol: mascbgmp.NewCBT(),
			HostPrefix: mascbgmp.MustParsePrefix("10.3.0.0/16")},
	} {
		if _, err := net.AddDomain(dc); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Link(21, 11); err != nil {
		t.Fatal(err)
	}
	if err := net.Link(31, 12); err != nil {
		t.Fatal(err)
	}
	if err := net.MASCPeerParentChild(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := net.MASCPeerParentChild(1, 3); err != nil {
		t.Fatal(err)
	}

	// MASC: the backbone claims from 224/4, the customer claims within.
	if !net.Domain(1).MASC().RequestSpace(1<<16, 60*24*time.Hour) {
		t.Fatal("top-level claim failed")
	}
	clk.RunFor(49 * time.Hour)
	if !net.Domain(2).MASC().RequestSpace(256, 30*24*time.Hour) {
		t.Fatal("child claim failed")
	}
	clk.RunFor(49 * time.Hour)

	// MAAS: a session in domain 2 gets an address from 2's range.
	lease, err := net.Domain(2).NewGroup(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !lease.Addr.IsMulticast() {
		t.Fatalf("leased %v", lease.Addr)
	}

	// BGMP: domain 3 joins; a non-member host in domain 1 sends.
	net.Domain(3).Join(lease.Addr, 0)
	src := net.Domain(1).HostAddr(1)
	net.Domain(1).Send(lease.Addr, src, "facade", 0)
	got := net.Domain(3).Received()
	if len(got) != 1 || got[0].Payload != "facade" {
		t.Fatalf("delivery = %v", got)
	}
}

// TestFacadeObservability reruns the end-to-end scenario with an Observer
// attached through the public API and checks each protocol layer showed up
// in the metrics, plus the redesigned error surface.
func TestFacadeObservability(t *testing.T) {
	clk := mascbgmp.NewSimClock(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	ob := mascbgmp.NewObserver()
	var claims int
	ob.Subscribe(func(e mascbgmp.Event) {
		if e.Kind == mascbgmp.EventMASCClaim {
			claims++
		}
	})
	net, err := mascbgmp.NewNetwork(mascbgmp.Config{
		Clock:       clk,
		Seed:        7,
		Synchronous: true,
		Observer:    ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range []mascbgmp.DomainConfig{
		{ID: 1, Routers: []mascbgmp.RouterID{11, 12}, Protocol: mascbgmp.NewDVMRP(),
			TopLevel: true, HostPrefix: mascbgmp.MustParsePrefix("10.1.0.0/16")},
		{ID: 2, Routers: []mascbgmp.RouterID{21}, Protocol: mascbgmp.NewPIMSM(1),
			HostPrefix: mascbgmp.MustParsePrefix("10.2.0.0/16")},
		{ID: 3, Routers: []mascbgmp.RouterID{31}, Protocol: mascbgmp.NewCBT(),
			HostPrefix: mascbgmp.MustParsePrefix("10.3.0.0/16")},
	} {
		if _, err := net.AddDomain(dc); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Link(21, 11); err != nil {
		t.Fatal(err)
	}
	if err := net.Link(31, 12); err != nil {
		t.Fatal(err)
	}
	net.MASCPeerParentChild(1, 2)
	net.MASCPeerParentChild(1, 3)

	net.Domain(1).MASC().RequestSpace(1<<16, 60*24*time.Hour)
	clk.RunFor(49 * time.Hour)
	net.Domain(2).MASC().RequestSpace(256, 30*24*time.Hour)
	clk.RunFor(49 * time.Hour)

	lease, err := net.Domain(2).NewGroup(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	net.Domain(3).Join(lease.Addr, 0)
	src := net.Domain(1).HostAddr(1)
	net.Domain(1).Send(lease.Addr, src, "observed", 0)
	if got := net.Domain(3).Received(); len(got) != 1 {
		t.Fatalf("delivery = %v", got)
	}
	// Synchronous networks are trivially quiescent.
	if err := net.Quiesce(time.Second); err != nil {
		t.Fatalf("Quiesce on sync net = %v", err)
	}

	s := net.Observer().Snapshot()
	for _, name := range []string{
		"masc.claim", "masc.won", "bgp.announce",
		"bgmp.join", "data.delivered", "maas.lease",
	} {
		if s.Total(name) == 0 {
			t.Errorf("counter %q is zero:\n%s", name, s)
		}
	}
	if claims == 0 {
		t.Error("subscriber saw no MASC claims")
	}
	if s.String() == "" || s.Totals() == "" {
		t.Error("snapshot renders empty")
	}

	// Redesigned error surface, through the facade.
	if err := net.Unlink(12, 21); !errors.Is(err, mascbgmp.ErrNotLinked) {
		t.Errorf("Unlink(unlinked) = %v, want ErrNotLinked", err)
	}
	_, err = mascbgmp.NewNetwork(mascbgmp.Config{TCP: true, Synchronous: true})
	var ce *mascbgmp.ConfigError
	if !errors.As(err, &ce) || ce.Field != "TCP" {
		t.Errorf("NewNetwork(TCP+Synchronous) = %v, want *ConfigError{Field: TCP}", err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	cfg := mascbgmp.DefaultFig2Config()
	cfg.TopLevel, cfg.ChildrenPer, cfg.Days = 4, 4, 40
	res := mascbgmp.RunFig2(cfg)
	if res.Satisfied == 0 || len(res.Samples) == 0 {
		t.Fatal("fig2 produced nothing")
	}

	f4 := mascbgmp.DefaultFig4Config()
	f4.Domains, f4.GroupSizes, f4.Trials = 200, []int{10}, 2
	pts := mascbgmp.RunFig4(f4)
	if len(pts) != 1 || pts[0].UniAvg < 1 {
		t.Fatalf("fig4 = %v", pts)
	}
}

func TestFacadeAddrHelpers(t *testing.T) {
	a, err := mascbgmp.ParseAddr("224.0.1.9")
	if err != nil || !a.IsMulticast() {
		t.Fatal("ParseAddr")
	}
	p, err := mascbgmp.ParsePrefix("224.0.0.0/8")
	if err != nil || !mascbgmp.MulticastSpace.ContainsPrefix(p) {
		t.Fatal("ParsePrefix")
	}
	g := mascbgmp.ASGraph(100, 10, 3)
	if g.NumDomains() != 100 || !g.Connected() {
		t.Fatal("ASGraph")
	}
}

func TestFacadeAllProtocols(t *testing.T) {
	for _, p := range []mascbgmp.MIGP{
		mascbgmp.NewDVMRP(), mascbgmp.NewPIMSM(0), mascbgmp.NewPIMDM(3),
		mascbgmp.NewCBT(), mascbgmp.NewMOSPF(),
	} {
		if p.Name() == "" {
			t.Fatal("unnamed protocol")
		}
	}
}
