// Package mascbgmp is a Go implementation of the MASC/BGMP architecture
// for inter-domain multicast routing (Kumar et al., SIGCOMM 1998).
//
// The architecture has two complementary protocols plus the substrates
// they rely on:
//
//   - MASC (Multicast Address-Set Claim) dynamically allocates multicast
//     address ranges to domains through a hierarchical listen-and-claim
//     mechanism with collision detection.
//   - BGMP (Border Gateway Multicast Protocol) builds inter-domain
//     bidirectional shared trees rooted at each group's root domain — the
//     domain whose MASC allocation covers the group address — with
//     optional source-specific branches.
//   - BGP-lite distributes the MASC allocations as group routes (the
//     G-RIB) and provides the M-RIB for incongruent multicast topologies.
//   - MAAS servers lease individual group addresses to applications.
//   - MIGPs (DVMRP, PIM-SM, PIM-DM, CBT, MOSPF) run inside each domain.
//   - Pluggable data planes let the same control plane forward through
//     BGMP shared trees (default), BIER-style bitstrings, or map-and-encap
//     tunnels (Config.DataPlane; see DESIGN.md §11).
//
// This package is the public facade: it re-exports the network-assembly
// API (build domains, link border routers, run the protocols in process —
// over real framed connections or deterministic synchronous dispatch), the
// address types, and the experiment harnesses that regenerate the paper's
// evaluation figures. The implementation lives in internal/ packages, one
// per subsystem; see DESIGN.md for the system inventory.
//
// # Quick start
//
//	net, err := mascbgmp.NewNetwork(mascbgmp.Config{Seed: 1, Synchronous: true,
//		Clock: mascbgmp.NewSimClock(time.Now())})
//	net.AddDomain(mascbgmp.DomainConfig{ID: 1, Routers: []mascbgmp.RouterID{11},
//		Protocol: mascbgmp.NewDVMRP(), TopLevel: true})
//	net.AddDomain(mascbgmp.DomainConfig{ID: 2, Routers: []mascbgmp.RouterID{21},
//		Protocol: mascbgmp.NewDVMRP()})
//	net.Link(11, 21)
//	net.MASCPeerParentChild(1, 2)
//	// claim space, lease a group, join, send — see examples/quickstart.
package mascbgmp

import (
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/bench"
	"mascbgmp/internal/bgp"
	"mascbgmp/internal/core"
	"mascbgmp/internal/dataplane"
	"mascbgmp/internal/experiments"
	"mascbgmp/internal/faultinject"
	"mascbgmp/internal/liveness"
	"mascbgmp/internal/masc"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/migp/cbt"
	"mascbgmp/internal/migp/dvmrp"
	"mascbgmp/internal/migp/mospf"
	"mascbgmp/internal/migp/pimdm"
	"mascbgmp/internal/migp/pimsm"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/scenario"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/topology"
	"mascbgmp/internal/transport"
	"mascbgmp/internal/wire"
)

// Core network-assembly types.
type (
	// Network is an in-process internetwork of MASC/BGMP domains.
	Network = core.Network
	// Config parameterizes a Network.
	Config = core.Config
	// Domain is one autonomous system.
	Domain = core.Domain
	// DomainConfig describes a domain to add.
	DomainConfig = core.DomainConfig
	// Router is a border router (BGP-lite speaker + BGMP component).
	Router = core.Router
	// Delivery records one packet reaching one interior member.
	Delivery = core.Delivery
	// ConfigError reports an invalid Config field combination from
	// Config.Validate / NewNetwork.
	ConfigError = core.ConfigError
)

// Observability types. Pass a NewObserver() as Config.Observer (or wire it
// into the experiment configs) to count protocol events — MASC claims and
// collisions, BGP route churn, BGMP joins/prunes and repairs, data-plane
// hops and deliveries — and to subscribe to the live event stream.
type (
	// Observer fans protocol events out to subscribers and the metrics
	// registry. The zero of everything: a nil *Observer disables
	// observation at no cost.
	Observer = obs.Observer
	// Metrics is a registry of named, scope-keyed atomic counters.
	Metrics = obs.Metrics
	// MetricsSnapshot is a point-in-time copy of a Metrics registry with
	// deterministic rendering and diffing.
	MetricsSnapshot = obs.Snapshot
	// Event is one observed protocol event.
	Event = obs.Event
	// EventKind enumerates observable protocol events.
	EventKind = obs.Kind
)

// Trace-plane types (DESIGN.md §13). Attach a NewTracer to an Observer
// (Observer.SetTracer) to record protocol causality — a member join's
// hop-by-hop propagation, a fault's detect→failover→reroute chain — as
// span trees; contexts travel inside the wire frames, so causality
// crosses router and domain boundaries. Everything is derived from the
// deterministic seed stream and the sim clock: same seed, same spans.
type (
	// Tracer allocates span IDs from a seeded deterministic stream and
	// records finished spans. A nil *Tracer disables tracing at no cost.
	Tracer = obs.Tracer
	// Span is one in-progress traced operation.
	Span = obs.Span
	// SpanRecord is one finished span as recorded by a Tracer.
	SpanRecord = obs.SpanRecord
	// TraceContext is the compact causal context carried in wire frames.
	TraceContext = wire.TraceContext
	// Histogram is a fixed-bucket latency/work histogram with
	// deterministic snapshot/merge (Observer.Histogram).
	Histogram = obs.Histogram
	// HistogramSnapshot is a Histogram's mergeable point-in-time copy.
	HistogramSnapshot = obs.HistSnapshot
	// FlightRecorder keeps a bounded ring of each router's recent events
	// for post-mortem dumps (Observer.SetFlightRecorder).
	FlightRecorder = obs.FlightRecorder
)

// NewTracer returns a Tracer whose span IDs derive from seed.
func NewTracer(seed int64) *Tracer { return obs.NewTracer(seed) }

// NewFlightRecorder returns a FlightRecorder keeping the last perScope
// events per (domain, router) scope.
func NewFlightRecorder(perScope int) *FlightRecorder { return obs.NewFlightRecorder(perScope) }

// ChromeTrace renders spans as Chrome trace-event JSON (load in
// chrome://tracing or Perfetto).
func ChromeTrace(recs []SpanRecord) []byte { return obs.ChromeTrace(recs) }

// RenderSpanTree renders spans as an indented deterministic text forest,
// one tree per root span.
func RenderSpanTree(recs []SpanRecord) string { return obs.RenderTree(recs) }

// Event kinds, re-exported for subscribers filtering the stream.
const (
	EventMASCClaim      = obs.MASCClaim
	EventMASCCollision  = obs.MASCCollision
	EventMASCWon        = obs.MASCWon
	EventMASCExpired    = obs.MASCExpired
	EventMASCRenewed    = obs.MASCRenewed
	EventMASCReleased   = obs.MASCReleased
	EventBGPAnnounce    = obs.BGPAnnounce
	EventBGPWithdraw    = obs.BGPWithdraw
	EventBGPBestChange  = obs.BGPBestChange
	EventBGMPJoin       = obs.BGMPJoin
	EventBGMPPrune      = obs.BGMPPrune
	EventBGMPRepair     = obs.BGMPRepair
	EventDataForwarded  = obs.DataForwarded
	EventDataEncap      = obs.DataEncap
	EventDataDelivered  = obs.DataDelivered
	EventTransportSent  = obs.TransportSent
	EventTransportRecv  = obs.TransportRecv
	EventMAASLease      = obs.MAASLease
	EventFaultDrop      = obs.FaultDrop
	EventFaultDup       = obs.FaultDup
	EventFaultReorder   = obs.FaultReorder
	EventFaultDelay     = obs.FaultDelay
	EventFaultPartition = obs.FaultPartition
	EventFaultHeal      = obs.FaultHeal
	EventFaultCrash     = obs.FaultCrash
	EventFaultRestart   = obs.FaultRestart
	EventSessionDown    = obs.SessionDown
	EventSessionRetry   = obs.SessionRetry
	EventSessionUp      = obs.SessionUp
	EventMASCRestored   = obs.MASCRestored
	EventLivenessDetect = obs.LivenessDetect
	EventLivenessDemand = obs.LivenessDemand
	EventLivenessResume = obs.LivenessResume
	EventBGMPFailover   = obs.BGMPFailover
)

// Span and histogram names, re-exported for querying trace records and
// histogram snapshots (obs owns the canonical constants; masclint rejects
// string-literal emission sites).
const (
	SpanMemberJoin     = obs.SpanMemberJoin
	SpanMemberLeave    = obs.SpanMemberLeave
	SpanJoinHop        = obs.SpanJoinHop
	SpanPruneHop       = obs.SpanPruneHop
	SpanRepair         = obs.SpanRepair
	SpanPeerDown       = obs.SpanPeerDown
	SpanBGPUpdate      = obs.SpanBGPUpdate
	SpanBGPWithdraw    = obs.SpanBGPWithdraw
	SpanSessionDown    = obs.SpanSessionDown
	SpanLivenessDetect = obs.SpanLivenessDetect
	SpanClaim          = obs.SpanClaim

	HistJoinGraft     = obs.HistJoinGraft
	HistClaimConverge = obs.HistClaimConverge
	HistDetect        = obs.HistDetect
	HistReroute       = obs.HistReroute
	HistReconverge    = obs.HistReconverge
	HistForwardWork   = obs.HistForwardWork
)

// NewObserver returns an Observer backed by a fresh Metrics registry.
func NewObserver() *Observer { return obs.NewObserver() }

// Network lifecycle errors.
var (
	// ErrNotLinked is wrapped by Network.Unlink when no such peering
	// exists.
	ErrNotLinked = core.ErrNotLinked
	// ErrQuiesceTimeout is wrapped by Network.Quiesce when in-flight
	// messages fail to drain in time.
	ErrQuiesceTimeout = transport.ErrQuiesceTimeout
)

// Identifier and address types.
type (
	// DomainID identifies a domain.
	DomainID = wire.DomainID
	// RouterID identifies a border router.
	RouterID = wire.RouterID
	// Addr is an IPv4 address.
	Addr = addr.Addr
	// Prefix is a CIDR address range.
	Prefix = addr.Prefix
)

// Interior-protocol plumbing.
type (
	// MIGP is the interior-protocol delivery model interface.
	MIGP = migp.Protocol
	// InteriorNode indexes a router in a domain's interior topology.
	InteriorNode = migp.Node
)

// Routing-policy plumbing (§4.2: multicast policies through selective
// propagation of group routes).
type (
	// ExportFilter decides whether a route may be advertised to a
	// neighbor.
	ExportFilter = bgp.ExportFilter
	// Neighbor describes a configured BGP peer as seen by a filter.
	Neighbor = bgp.Neighbor
	// Table selects a logical routing table (unicast, M-RIB, G-RIB).
	Table = wire.Table
)

// Routing table selectors.
const (
	TableUnicast = wire.TableUnicast
	TableMRIB    = wire.TableMRIB
	TableGRIB    = wire.TableGRIB
)

// CustomerExportFilter implements the canonical provider-customer policy:
// toward providers and peers, advertise only routes originated by the
// domain itself or its customers; toward customers, advertise everything.
func CustomerExportFilter(self DomainID, customers map[DomainID]bool) ExportFilter {
	return bgp.CustomerExportFilter(self, customers)
}

// TableExportFilter restricts a filter to one table.
func TableExportFilter(table Table, f ExportFilter) ExportFilter {
	return bgp.TableExportFilter(table, f)
}

// DenyPrefixFilter blocks routes covered by any of the given prefixes.
func DenyPrefixFilter(deny ...Prefix) ExportFilter { return bgp.DenyPrefixFilter(deny...) }

// Strategy holds the MASC claim-algorithm tunables (§4.3.3): target
// occupancy, prefix-count target, claim lifetime.
type Strategy = masc.Strategy

// DefaultStrategy returns the paper's parameters (75 % occupancy target,
// at most two active prefixes, 30-day claims).
func DefaultStrategy() Strategy { return masc.DefaultStrategy() }

// Clock is the time source abstraction (real or simulated).
type Clock = simclock.Clock

// SimClock is a deterministic simulated clock.
type SimClock = simclock.Sim

// Experiment harness types (regenerate the paper's figures).
type (
	// Fig2Config parameterizes the §4.3.3 allocation simulation.
	Fig2Config = experiments.Fig2Config
	// Fig2Result is its outcome.
	Fig2Result = experiments.Fig2Result
	// Fig2Sample is one time-series point of Figure 2.
	Fig2Sample = experiments.Fig2Sample
	// Fig4Config parameterizes the §5.4 tree-quality comparison.
	Fig4Config = experiments.Fig4Config
	// Fig4Point is one x-axis point of Figure 4.
	Fig4Point = experiments.Fig4Point
	// ChurnConfig parameterizes the scale-churn workload: join/leave
	// churn over thousands of groups on the paper-scale AS graph.
	ChurnConfig = experiments.ChurnConfig
	// ChurnResult is its outcome.
	ChurnResult = experiments.ChurnResult
)

// Pluggable data-plane backends (DESIGN.md §11). Config.DataPlane selects
// the forwarding plane every border router runs: the default BGMP shared
// trees, BIER-style bitstring forwarding, or map-and-encap tunneling to
// the MASC-derived root domain. All three share the control plane (BGP-lite
// RIBs, MASC allocation, MIGP interiors) and deliver to identical receiver
// sets; they trade per-router state against path stretch and per-packet
// header overhead.
type (
	// DataPlaneBackend is the forwarding plane of one border router
	// (Router.DataPlane()).
	DataPlaneBackend = dataplane.Backend
	// DataPlaneStats are a backend's per-router comparison counters.
	DataPlaneStats = dataplane.Stats
	// DataPlaneResult is the outcome of RunDataPlane: the churn workload
	// plus one cost row per backend.
	DataPlaneResult = experiments.DataPlaneResult
	// DataPlaneBackendCost is one backend's row in a DataPlaneResult.
	DataPlaneBackendCost = experiments.BackendCost
)

// Data-plane backend names — the valid Config.DataPlane values and the
// cmds' -backend arguments.
const (
	DataPlaneSharedTree = dataplane.SharedTreeName
	DataPlaneBIER       = dataplane.BIERName
	DataPlaneMapEncap   = dataplane.MapEncapName
)

// DataPlaneNames returns the valid backend names in presentation order.
func DataPlaneNames() []string { return dataplane.Names() }

// ValidDataPlane reports whether name identifies a data-plane backend.
func ValidDataPlane(name string) bool { return dataplane.ValidName(name) }

// RunDataPlane costs the three forwarding backends side by side on the
// churn workload — state, path stretch, per-packet header overhead — from
// the same membership and the same senders (the dataplane-compare suite).
// Deterministic for a given config; cfg.DataPlane is ignored.
func RunDataPlane(cfg ChurnConfig) DataPlaneResult { return experiments.RunDataPlane(cfg) }

// Declarative scenario layer (internal/scenario + the experiments
// engine): TOML-subset scenario files parse to a ScenarioSpec, compile
// to a pluggable membership generator, and run through the same shared
// trees and MASC allocators the churn workload uses. See DESIGN.md §14.
type (
	// ScenarioSpec is one parsed, validated scenario file.
	ScenarioSpec = scenario.Spec
	// ScenarioParseError is a scenario-file error with its source
	// position ("file:line: message").
	ScenarioParseError = scenario.ParseError
	// WorkloadConfig parameterizes RunWorkload.
	WorkloadConfig = experiments.WorkloadConfig
	// WorkloadResult is the engine's deterministic outcome: membership
	// and tree metrics plus the §4.3.3 allocator excursion counters.
	WorkloadResult = experiments.WorkloadResult
)

// ParseScenario parses scenario-file bytes; file labels error positions.
func ParseScenario(file string, data []byte) (ScenarioSpec, error) {
	return scenario.Parse(file, data)
}

// ParseScenarioFile reads and parses a scenario file, resolving a
// file-kind topology path relative to the scenario file's directory.
func ParseScenarioFile(path string) (ScenarioSpec, error) { return scenario.ParseFile(path) }

// RunWorkload executes one scenario trial. Deterministic for a given
// (spec, seed).
func RunWorkload(cfg WorkloadConfig) (WorkloadResult, error) { return experiments.RunWorkload(cfg) }

// LoadBenchScenarioFile parses a scenario file and registers it beside
// the built-in benchmark suites (benchsuite -scenario).
func LoadBenchScenarioFile(path string) (BenchScenario, error) {
	return bench.LoadScenarioFile(path)
}

// Benchmark suite layer (cmd/benchsuite): named scenarios run through the
// parallel deterministic trial runner and reported as machine-readable
// results. The Metrics and Counters sections of a BenchResult are pure
// functions of (suite, trials, seed) — identical at any parallelism —
// while Env and Timing carry the host- and wall-clock-dependent figures.
type (
	// BenchScenario is a named, registered benchmark workload.
	BenchScenario = bench.Scenario
	// BenchMetricDef declares one metric a scenario reports per trial.
	BenchMetricDef = bench.MetricDef
	// BenchOptions parameterize a suite run (trials, parallelism, seed).
	BenchOptions = bench.Options
	// BenchResult is the machine-readable outcome of one suite run —
	// the contents of a BENCH_<suite>.json file.
	BenchResult = bench.SuiteResult
	// BenchRegression is one metric that moved the wrong way past the
	// -compare tolerance.
	BenchRegression = bench.Regression
)

// BenchScenarios lists the registered benchmark suites sorted by name.
func BenchScenarios() []BenchScenario { return bench.Scenarios() }

// RunBenchScenario runs a registered suite by name.
func RunBenchScenario(name string, opts BenchOptions) (BenchResult, error) {
	return bench.RunSuite(name, opts)
}

// Fault injection and recovery (chaos engineering for the protocols). A
// FaultPlane set as Config.Faults intercepts every peering message;
// Config.HoldTime enables session supervision with keepalives, hold-timer
// failure detection, and exponential-backoff reconnect.
type (
	// FaultPlane is a seeded, deterministic fault injector for the
	// message layer: per-link drop/duplicate/reorder/delay, partitions
	// with scheduled heal, and peer crash/restart.
	FaultPlane = faultinject.Plane
	// FaultPlaneConfig parameterizes NewFaultPlane.
	FaultPlaneConfig = faultinject.Config
	// LinkFaults is one link's fault probabilities.
	LinkFaults = faultinject.LinkFaults
	// FaultClass labels a message for class-scoped faults.
	FaultClass = faultinject.Class
	// FaultClassMask selects the classes a LinkFaults entry applies to.
	FaultClassMask = faultinject.ClassMask
	// FaultStats counts what the plane did to the traffic.
	FaultStats = faultinject.Stats
	// ChaosConfig parameterizes the failure-recovery sweep (cmd/chaossim).
	ChaosConfig = core.ChaosConfig
	// ChaosPoint is one loss rate's recovery measurements.
	ChaosPoint = core.ChaosPoint
	// LivenessParams tunes the BFD-style fast failure detector enabled
	// via Config.Liveness: probe-interval floor, miss multiplier, and
	// demand-mode quiesce. Hold timers remain the fallback.
	LivenessParams = liveness.Params
)

// Fault message classes and masks.
const (
	FaultControl   = faultinject.Control
	FaultData      = faultinject.Data
	FaultKeepalive = faultinject.Keepalive
	FaultLiveness  = faultinject.Liveness

	FaultMaskControl   = faultinject.MaskControl
	FaultMaskData      = faultinject.MaskData
	FaultMaskKeepalive = faultinject.MaskKeepalive
	FaultMaskLiveness  = faultinject.MaskLiveness
	FaultMaskAll       = faultinject.MaskAll
)

// NewFaultPlane returns a fault plane, or an error when the config lacks
// its explicit *rand.Rand.
func NewFaultPlane(cfg FaultPlaneConfig) (*FaultPlane, error) { return faultinject.New(cfg) }

// DefaultChaosConfig returns the failure-recovery sweep recorded in
// EXPERIMENTS.md.
func DefaultChaosConfig() ChaosConfig { return core.DefaultChaosConfig() }

// RunChaos runs the failure-recovery sweep: delivery ratio under loss,
// time-to-reroute after a crash, time-to-reconverge after the restart.
// Deterministic for a given config.
func RunChaos(cfg ChaosConfig) ([]ChaosPoint, error) { return core.RunChaos(cfg) }

// Topology types for custom inter-domain graphs.
type (
	// Graph is an inter-domain topology.
	Graph = topology.Graph
	// GraphDomainID indexes a node in a Graph.
	GraphDomainID = topology.DomainID
)

// NewNetwork returns an empty network, or a *ConfigError when cfg fails
// Config.Validate.
func NewNetwork(cfg Config) (*Network, error) { return core.NewNetwork(cfg) }

// NewSimClock returns a simulated clock starting at the given instant.
func NewSimClock(start time.Time) *SimClock { return simclock.NewSim(start) }

// MulticastSpace is the IPv4 multicast address space 224.0.0.0/4.
var MulticastSpace = addr.MulticastSpace

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) { return addr.ParseAddr(s) }

// ParsePrefix parses CIDR notation such as "224.0.1.0/24".
func ParsePrefix(s string) (Prefix, error) { return addr.ParsePrefix(s) }

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix { return addr.MustParsePrefix(s) }

// Interior protocol constructors — the architecture is MIGP-independent;
// each domain picks one (§3).

// NewDVMRP returns a DVMRP interior protocol (flood-and-prune, strict RPF).
func NewDVMRP() MIGP { return dvmrp.New() }

// NewPIMSM returns a PIM Sparse-Mode interior protocol with the given SPT
// switchover threshold (0 keeps receivers on the RP tree).
func NewPIMSM(sptThreshold int) MIGP { return pimsm.New(sptThreshold) }

// NewPIMDM returns a PIM Dense-Mode interior protocol whose prune state
// expires after pruneLife packets (0: never).
func NewPIMDM(pruneLife int) MIGP { return pimdm.New(pruneLife) }

// NewCBT returns a Core Based Trees interior protocol.
func NewCBT() MIGP { return cbt.New() }

// NewMOSPF returns a Multicast OSPF interior protocol.
func NewMOSPF() MIGP { return mospf.New() }

// Experiment entry points.

// DefaultFig2Config returns the paper's §4.3.3 simulation parameters
// (50 top-level domains × 50 children, 800 days).
func DefaultFig2Config() Fig2Config { return experiments.DefaultFig2Config() }

// RunFig2 runs the address-allocation simulation behind Figures 2(a) and
// 2(b). Deterministic for a given config.
func RunFig2(cfg Fig2Config) Fig2Result { return experiments.RunFig2(cfg) }

// DefaultFig4Config returns the paper's §5.4 comparison parameters
// (3326-domain topology, group sizes 1..1000).
func DefaultFig4Config() Fig4Config { return experiments.DefaultFig4Config() }

// RunFig4 runs the tree-quality comparison behind Figure 4.
func RunFig4(cfg Fig4Config) []Fig4Point { return experiments.RunFig4(cfg) }

// DefaultChurnConfig returns the scale-churn workload at paper scale:
// the 3326-domain AS graph, 2500 groups, 40000 join/leave events.
func DefaultChurnConfig() ChurnConfig { return experiments.DefaultChurnConfig() }

// RunChurn runs the churn workload and its steady-state forwarding
// phase. Deterministic for a given config.
func RunChurn(cfg ChurnConfig) ChurnResult { return experiments.RunChurn(cfg) }

// ASGraph synthesizes an AS-like inter-domain topology (the stand-in for
// the paper's BGP-dump topology; see DESIGN.md §2).
func ASGraph(n, extraPeering int, seed int64) *Graph {
	return topology.ASGraph(n, extraPeering, seed)
}
