package mascbgmp_test

// Benchmark harness for the paper's evaluation artifacts.
// BenchmarkScenario drives the registered benchsuite scenarios, so
// `go test -bench Scenario` and `go run ./cmd/benchsuite` report the same
// scenario names and metrics; cmd/mascsim and cmd/treesim produce the
// full-scale series. The Ablation* benchmarks vary the design choices
// DESIGN.md §5 calls out.
//
// Run with: go test -bench=. -benchmem

import (
	"testing"
	"time"

	"mascbgmp"
)

// fig2Bench returns a configuration that finishes in well under a second
// per iteration while preserving the paper's dynamics.
func fig2Bench() mascbgmp.Fig2Config {
	cfg := mascbgmp.DefaultFig2Config()
	cfg.TopLevel = 8
	cfg.ChildrenPer = 8
	cfg.Days = 120
	return cfg
}

// steadyState averages utilization and G-RIB size after the startup
// transient.
func steadyState(res mascbgmp.Fig2Result) (util, gribAvg float64, gribMax int) {
	var n int
	for _, s := range res.Samples {
		if s.Day > 60 {
			util += s.Utilization
			gribAvg += s.GRIBAvg
			if s.GRIBMax > gribMax {
				gribMax = s.GRIBMax
			}
			n++
		}
	}
	if n > 0 {
		util /= float64(n)
		gribAvg /= float64(n)
	}
	return util, gribAvg, gribMax
}

// BenchmarkScenario runs every registered benchsuite scenario (one trial
// per iteration) under its registry name, so `go test -bench Scenario`
// reports the same scenario names and metrics as cmd/benchsuite. The
// expensive fig2-alloc suite is excluded from -short runs.
func BenchmarkScenario(b *testing.B) {
	for _, s := range mascbgmp.BenchScenarios() {
		s := s
		b.Run(s.Name, func(b *testing.B) {
			if testing.Short() && s.Name == "fig2-alloc" {
				b.Skip("fig2-alloc takes ~3s per trial")
			}
			b.ReportAllocs()
			var res mascbgmp.BenchResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = mascbgmp.RunBenchScenario(s.Name,
					mascbgmp.BenchOptions{Trials: 1, Parallel: 1, Seed: 1998})
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, m := range res.Metrics {
				b.ReportMetric(m.Mean, m.Name)
			}
		})
	}
}

func fig4Bench() mascbgmp.Fig4Config {
	cfg := mascbgmp.DefaultFig4Config()
	cfg.Domains = 800
	cfg.ExtraPeering = 100
	cfg.GroupSizes = []int{10, 100, 400}
	cfg.Trials = 3
	return cfg
}

// BenchmarkAblationRootPlacement compares initiator-domain rooting (the
// paper's §5.1 choice) against random third-party rooting.
func BenchmarkAblationRootPlacement(b *testing.B) {
	base := fig4Bench()
	random := base
	random.RandomRoot = true
	var initiator, third float64
	for i := 0; i < b.N; i++ {
		a := mascbgmp.RunFig4(base)
		c := mascbgmp.RunFig4(random)
		initiator, third = 0, 0
		for j := range a {
			initiator += a[j].BidirAvg
			third += c[j].BidirAvg
		}
		initiator /= float64(len(a))
		third /= float64(len(c))
	}
	b.ReportMetric(initiator, "initiator-root-ratio")
	b.ReportMetric(third, "random-root-ratio")
}

// BenchmarkAblationPrefixLimit varies the §4.3.3 "at most two prefixes"
// target, reporting its effect on G-RIB size and utilization.
func BenchmarkAblationPrefixLimit(b *testing.B) {
	for _, limit := range []int{1, 2, 4} {
		limit := limit
		name := map[int]string{1: "max1", 2: "max2-paper", 4: "max4"}[limit]
		b.Run(name, func(b *testing.B) {
			cfg := fig2Bench()
			st := mascbgmp.DefaultStrategy()
			st.MaxActivePrefixes = limit
			cfg.Strategy = st
			var util, grib float64
			for i := 0; i < b.N; i++ {
				res := mascbgmp.RunFig2(cfg)
				util, grib, _ = steadyState(res)
			}
			b.ReportMetric(util*100, "%util")
			b.ReportMetric(grib, "routes-avg")
		})
	}
}

// BenchmarkAblationOccupancyTarget varies the 75 % target-occupancy rule.
func BenchmarkAblationOccupancyTarget(b *testing.B) {
	for _, tgt := range []float64{0.5, 0.75, 0.9} {
		tgt := tgt
		name := map[float64]string{0.5: "t50", 0.75: "t75-paper", 0.9: "t90"}[tgt]
		b.Run(name, func(b *testing.B) {
			cfg := fig2Bench()
			st := mascbgmp.DefaultStrategy()
			st.TargetOccupancy = tgt
			cfg.Strategy = st
			var util, grib float64
			for i := 0; i < b.N; i++ {
				res := mascbgmp.RunFig2(cfg)
				util, grib, _ = steadyState(res)
			}
			b.ReportMetric(util*100, "%util")
			b.ReportMetric(grib, "routes-avg")
		})
	}
}

// BenchmarkEndToEndDelivery measures one multicast send across three
// domains through the full protocol stack (synchronous dispatch).
func BenchmarkEndToEndDelivery(b *testing.B) {
	clk := mascbgmp.NewSimClock(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	net, err := mascbgmp.NewNetwork(mascbgmp.Config{Clock: clk, Seed: 7, Synchronous: true})
	if err != nil {
		b.Fatal(err)
	}
	mustDomain := func(dc mascbgmp.DomainConfig) {
		if _, err := net.AddDomain(dc); err != nil {
			b.Fatal(err)
		}
	}
	mustDomain(mascbgmp.DomainConfig{ID: 1, Routers: []mascbgmp.RouterID{11, 12},
		Protocol: mascbgmp.NewDVMRP(), TopLevel: true,
		HostPrefix: mascbgmp.MustParsePrefix("10.1.0.0/16")})
	mustDomain(mascbgmp.DomainConfig{ID: 2, Routers: []mascbgmp.RouterID{21},
		Protocol: mascbgmp.NewDVMRP(), HostPrefix: mascbgmp.MustParsePrefix("10.2.0.0/16")})
	mustDomain(mascbgmp.DomainConfig{ID: 3, Routers: []mascbgmp.RouterID{31},
		Protocol: mascbgmp.NewDVMRP(), HostPrefix: mascbgmp.MustParsePrefix("10.3.0.0/16")})
	if err := net.Link(21, 11); err != nil {
		b.Fatal(err)
	}
	if err := net.Link(31, 12); err != nil {
		b.Fatal(err)
	}
	net.MASCPeerParentChild(1, 2)
	net.MASCPeerParentChild(1, 3)
	net.Domain(1).MASC().RequestSpace(1<<16, 1000*time.Hour)
	clk.RunFor(49 * time.Hour)
	net.Domain(2).MASC().RequestSpace(256, 900*time.Hour)
	clk.RunFor(49 * time.Hour)
	lease, err := net.Domain(2).NewGroup(800 * time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	net.Domain(3).Join(lease.Addr, 0)
	src := net.Domain(1).HostAddr(1)

	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Domain(1).Send(lease.Addr, src, "bench", 0)
	}
	b.StopTimer()
	if len(net.Domain(3).Received()) != b.N {
		b.Fatalf("deliveries = %d, want %d", len(net.Domain(3).Received()), b.N)
	}
}

// BenchmarkTopologyGeneration measures synthesizing the paper-scale
// 3326-domain graph.
func BenchmarkTopologyGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mascbgmp.ASGraph(3326, 350, int64(i))
	}
}
